// Command pibe drives the PIBE pipeline step by step, mirroring the
// paper's artifact workflow: generate a kernel, collect a profile, build
// an optimized + hardened image, measure it, and report its security
// census.
//
// Usage:
//
//	pibe profile  [-seed N] [-workload lmbench|apache] [-o profile.txt]
//	pibe build    [-seed N] [-profile profile.txt] [-defenses all|retpolines|ret-retpolines|lvi|fineibt|pac-cfi|verifence|none]
//	              [-icp 0.99999] [-inline 0.999999] [-lax 0.99] [-llvm-inliner] [-jumpswitches]
//	              [-measure] [-security]
//	pibe measure  [-seed N] [-profile profile.txt] ... (build + LMBench latencies)
//	pibe top      [-seed N] [-workload lmbench|apache] [-n 30]   (hottest call sites)
//	pibe dump     [-seed N] -func NAME [...build flags]          (one function's IR)
//	pibe fleet    [-seed N] [-fleet 4] [-fleet-shards 8] [-fleet-epochs 3]
//	              [-drift-threshold 0.75] [-fleet-mix apache,nginx] [-fleet-decay 0.5]
//	              [-canary 1] [-regression-budget 0.05] [-state DIR]
//	              [-profile baseline.txt] [...build flags] [-measure]
//	pibe bench-engine [-seed N] [-engine interp|compiled] [-measure-workers N] [-bench-iters N]
//	              [-o BENCH_engine.json]
//	pibe sweep    [-seed N] [-sweep-grid 0,50,90,99,99.9,99.99,99.9999] [-sweep-combos retpoline,all]
//	              [-sweep-knee 1.1] [-sweep-kernel-scale 1] [-sweep-timings]
//	              [-state sweep.state] [-sweep-shards N -sweep-shard I]
//	              [-chaos RATE] [-measure-workers N] [-o BENCH_sweep.json]
//	pibe sweep-merge [-o BENCH_sweep.json] state-file...
//	pibe sweep-diff  A.json B.json
//	pibe ingest   [-seed N] [-tenants 64] [-kernels 16384] [-ingest-rounds 3]
//	              [-ingest-workers N] [-ingest-batch 64] [-ingest-queue 64] [-ingest-shed]
//	              [-ingest-idle-evict 4] [-tenant-shards 4] [-global-shards 16]
//	              [-sites-per-delta 12] [-ingest-mix lmbench,apache,nginx,dbench]
//	              [-ingest-trip-faults 8] [-ingest-open-rounds 2] [-ingest-rate N]
//	              [-ingest-burst N] [-ingest-drift-floor F]
//	              [-ingest-poison] [-ingest-poison-from R]
//	              [-state DIR] [-snapshot-out global.txt] [-o BENCH_ingest.json]
//
// Ingest mode runs the multi-tenant profile-ingestion service against a
// simulated fleet-of-fleets: -tenants fleets of -kernels reporting
// kernels each (the default is 64 × 16384 = 1,048,576 kernels), every
// kernel submitting one profile delta per round. Deltas batch per
// tenant, flow through a bounded merge queue into per-tenant striped
// aggregators and a global cross-tenant aggregate, and every round ends
// with decay/eviction of idle tenants (every fourth simulated tenant
// reports intermittently). Counts are exact sums, so the -snapshot-out
// global profile is byte-identical for every -ingest-workers value; the
// queue backpressures by blocking, or sheds with counted overload
// faults under -ingest-shed. With -state DIR the service checkpoints
// after every round (evicted tenants get their own crash-safe files and
// are resurrected from them on their next delta); a killed run rerun
// with the same flags resumes at the checkpointed round and produces a
// byte-identical final snapshot. BENCH_ingest.json records throughput,
// batch-merge latency quantiles, queue high-water, lifecycle counters
// and per-tenant drift.
//
// Every tenant runs behind a fault-isolation bulkhead: deltas are
// structurally sanitized at submission (malformed ones are rejected as
// poison and never merge), a per-tenant circuit breaker driven at the
// round barrier quarantines a tenant after -ingest-trip-faults faults
// in one round (its deltas are then counted and dropped for
// -ingest-open-rounds rounds, doubling on re-trips, before a probation
// round decides between healing and re-quarantine), and -ingest-rate
// caps each tenant's admitted deltas per round (-ingest-burst the
// bucket). -ingest-poison adds a simulated poison tenant: because
// rejected and quarantined deltas never reach the merge, the final
// -snapshot-out is byte-identical with and without it. -ingest-drift-floor
// marks tenants whose hot set drifts too far as degraded in the health
// census. All isolation state rides in the round-barrier checkpoint, so
// a killed run resumes with its quarantines intact.
//
// Sweep mode evaluates the full ICP×inline budget grid (the same
// -sweep-grid percentages on both axes) crossed with the named defense
// combos, prints one aligned geomean-overhead matrix per combo with its
// knee point (the least aggressive budget pair within -sweep-knee of
// the combo's best slowdown factor) and writes the machine-readable
// surface to BENCH_sweep.json. Cells share the suite's singleflight
// build cache and measure through the sharded deterministic driver, so
// the JSON is byte-identical for every -measure-workers value ≥ 1
// (wall-clock build times are recorded only under -sweep-timings, which
// gives that determinism up). -sweep-kernel-scale S multiplies the cold
// driver corpus to S×2200 functions and adds S-1 intermediate helper
// layers, stressing the census tables at realistic kernel scale.
//
// Sweeps are crash-safe and degrade gracefully. With -state FILE every
// completed cell is appended to a fingerprint-gated, torn-write-tolerant
// state file; rerunning with the same flags resumes past completed cells
// and emits a BENCH_sweep.json byte-identical to an uninterrupted run's
// (a state file from different flags is rejected). A cell that keeps
// failing after retries is reported as FAIL with its structured fault and
// excluded from knee detection instead of aborting the sweep.
// -sweep-shards N -sweep-shard I restricts one process to every Nth grid
// cell; `pibe sweep-merge` combines the shard state files into the
// canonical report, and `pibe sweep-diff A.json B.json` compares two
// sweep surfaces cell by cell and reports knee migration.
//
// Measurement commands accept -measure-workers N (default GOMAXPROCS):
// with N >= 1 the sharded measurement driver runs repetitions on a
// bounded worker pool with per-repetition derived seeds, deterministic
// for every N; -measure-workers=0 selects the legacy serial driver.
// bench-engine times the execution engine (machine dispatch, profile
// collection, request measurement serial vs parallel) and writes a
// machine-readable BENCH_engine.json; raw dispatch is always timed on
// both tiers (machine_run_interp / machine_run_compiled).
//
// Every command accepts -engine interp|compiled to select the execution
// tier for profiling and measurement machines. The compiled engine runs
// pre-compiled threaded code (closure chains) instead of per-instruction
// dispatch; it is cycle-exact against the interpreter — profiles,
// latencies, sweep surfaces and censuses are identical — so the flag
// only changes wall-clock time. Machines the compiled tier cannot run
// (live recorder, hook, injector, exact accounting) silently fall back.
//
// Fleet mode runs continuous profiling: -fleet concurrent collectors per
// epoch stream profile deltas into a sharded aggregator with per-epoch
// exponential decay; when the live hot set's overlap with the baseline
// profile falls below -drift-threshold, the image is rebuilt from the
// fresh aggregate. A rebuilt image must pass differential validation
// against the unoptimized-but-hardened reference, then serve -canary
// epochs; it is promoted only if its canary latency stays within
// -regression-budget of the incumbent and no new fault kinds appeared —
// otherwise the incumbent keeps serving and the rejection reason is
// printed. With -state DIR, the fleet checkpoints after every epoch and
// a rerun with the same directory resumes mid-loop, losing at most the
// epoch that was in flight when the process died. With -measure, each
// epoch reports the active image's per-request kernel cycles, so a
// promotion shows up as a latency drop.
//
// Chaos mode (any command): -chaos RATE arms a deterministic fault
// injector (seeded by -chaos-seed) that forces interpreter traps,
// fuel/depth exhaustion and transient measurement failures at the given
// rate. The pipeline degrades gracefully — aborted profiling runs emit
// the partial profile collected so far, and transient measurement
// failures are retried with backoff; fired faults are summarized on
// stderr. -lenient salvages corrupt or truncated -profile inputs,
// skipping bad records and reporting what was kept.
//
// The kernel is regenerated deterministically from the seed on every
// invocation, so a profile collected by one run maps onto the kernel
// built by the next.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	pibe "repro"
	"repro/internal/resilience"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 1, "kernel generation seed")
	workloadName := fs.String("workload", "lmbench", "profiling workload: lmbench or apache")
	out := fs.String("o", "", "output file (default stdout)")
	profilePath := fs.String("profile", "", "profile file from 'pibe profile'")
	defenses := fs.String("defenses", "all", "defenses: all, retpolines, ret-retpolines, lvi, fineibt, pac-cfi, verifence, none")
	icpBudget := fs.Float64("icp", 0.99999, "indirect call promotion budget (0 disables)")
	inlineBudget := fs.Float64("inline", 0.999999, "inlining budget (0 disables)")
	lax := fs.Float64("lax", 0.99, "lax-heuristics budget (0 disables)")
	llvmInliner := fs.Bool("llvm-inliner", false, "use the default-LLVM baseline inliner")
	jumpswitches := fs.Bool("jumpswitches", false, "use the JumpSwitches runtime baseline")
	measure := fs.Bool("measure", false, "measure LMBench latencies after build")
	security := fs.Bool("security", false, "print the security census after build")
	topN := fs.Int("n", 30, "rows for 'pibe top'")
	funcName := fs.String("func", "", "function name for 'pibe dump'")
	fleetRunners := fs.Int("fleet", 4, "fleet mode: concurrent profile collectors per epoch")
	fleetShards := fs.Int("fleet-shards", 8, "fleet aggregator shard (lock stripe) count")
	fleetEpochs := fs.Int("fleet-epochs", 3, "fleet profiling epochs")
	driftThreshold := fs.Float64("drift-threshold", 0.75, "rebuild when hot-set overlap falls below this (0 disables)")
	fleetMix := fs.String("fleet-mix", "apache,nginx", "comma-separated fleet workload mix")
	fleetDecay := fs.Float64("fleet-decay", 0.5, "per-epoch count decay factor (1 disables)")
	canary := fs.Int("canary", 1, "epochs a rebuilt candidate serves before the promotion decision")
	regressionBudget := fs.Float64("regression-budget", 0.05, "canary latency regression tolerated vs the incumbent")
	stateDir := fs.String("state", "", "crash-safe state: fleet checkpoint directory, or sweep state file (resumes if present)")
	chaosRate := fs.Float64("chaos", 0, "fault-injection rate (0 disables chaos mode)")
	chaosSeed := fs.Int64("chaos-seed", 1, "fault-injection seed")
	chaosMax := fs.Int("chaos-max", 0, "cap on total injected faults (0 = unlimited)")
	lenient := fs.Bool("lenient", false, "salvage corrupt/truncated -profile inputs instead of failing")
	measureWorkers := fs.Int("measure-workers", runtime.GOMAXPROCS(0),
		"measurement worker pool size (0 = legacy serial driver)")
	engineName := fs.String("engine", "interp",
		"execution engine: interp (packed-event reference) or compiled (threaded code; cycle-exact, faster)")
	benchIters := fs.Int("bench-iters", 3, "minimum iterations per bench-engine benchmark")
	sweepGrid := fs.String("sweep-grid", "0,50,90,99,99.9,99.99,99.9999",
		"comma-separated budget grid in percent, applied to both sweep axes")
	sweepCombos := fs.String("sweep-combos", "retpoline,ret-retpoline,lvi-cfi,fineibt,pac-cfi,verifence,all",
		"comma-separated defense combos to sweep")
	sweepKnee := fs.Float64("sweep-knee", 1.1,
		"knee tolerance: least aggressive cell within this factor of the best slowdown")
	sweepKernelScale := fs.Int("sweep-kernel-scale", 1,
		"synthesize an S×-scaled kernel (S×2200 cold functions, S-1 helper layers)")
	sweepTimings := fs.Bool("sweep-timings", false,
		"record wall-clock build times in BENCH_sweep.json (makes it non-reproducible)")
	sweepShards := fs.Int("sweep-shards", 1,
		"partition the sweep grid across this many cooperating processes")
	sweepShard := fs.Int("sweep-shard", 0,
		"this process's shard index in [0, -sweep-shards)")
	ingestTenants := fs.Int("tenants", 64, "ingest mode: tenant (fleet) count")
	ingestKernels := fs.Int("kernels", 16384, "ingest mode: reporting kernels per tenant")
	ingestRounds := fs.Int("ingest-rounds", 3, "ingest mode: reporting rounds")
	ingestWorkers := fs.Int("ingest-workers", 0,
		"ingest submission/merge worker count (0 = GOMAXPROCS; never changes the result)")
	ingestBatch := fs.Int("ingest-batch", 64, "ingest deltas per merged batch")
	ingestQueue := fs.Int("ingest-queue", 64, "ingest merge-queue depth (batches)")
	ingestShed := fs.Bool("ingest-shed", false,
		"shed batches with an overload fault when the merge queue is full (default: block)")
	ingestIdleEvict := fs.Int("ingest-idle-evict", 4,
		"evict a tenant after this many idle rounds")
	ingestTripFaults := fs.Uint64("ingest-trip-faults", 8,
		"tenant faults (poison + throttle) in one round that trip its circuit breaker")
	ingestOpenRounds := fs.Int("ingest-open-rounds", 2,
		"base quarantine length in rounds (consecutive re-trips double it, capped)")
	ingestRate := fs.Int("ingest-rate", 0,
		"per-tenant admission rate in deltas/round (0 = unlimited; gives up byte-determinism)")
	ingestBurst := fs.Int("ingest-burst", 0,
		"per-tenant admission burst cap (default: the rate)")
	ingestDriftFloor := fs.Float64("ingest-drift-floor", 0,
		"mark a tenant degraded when its round drift falls below this (0 disables)")
	ingestPoison := fs.Bool("ingest-poison", false,
		"add a poison tenant submitting malformed deltas every round (isolation demo)")
	ingestPoisonFrom := fs.Int("ingest-poison-from", 0,
		"first round the poison tenant reports in")
	tenantShards := fs.Int("tenant-shards", 4, "lock stripes per tenant aggregator")
	globalShards := fs.Int("global-shards", 16, "lock stripes in the global aggregator")
	sitesPerDelta := fs.Int("sites-per-delta", 12, "site records per simulated kernel delta")
	ingestMix := fs.String("ingest-mix", "lmbench,apache,nginx,dbench",
		"comma-separated tenant base-profile flavors")
	snapshotOut := fs.String("snapshot-out", "",
		"write the final global aggregate profile here (the byte-identical resume artifact)")
	fs.Parse(os.Args[2:])

	engine, err := pibe.ParseEngine(*engineName)
	check(err)

	if cmd == "ingest" {
		path := *out
		if path == "" {
			path = "BENCH_ingest.json"
		}
		check(runIngest(ingestOpts{
			engine:        engine,
			seed:          *seed,
			tenants:       *ingestTenants,
			kernels:       *ingestKernels,
			rounds:        *ingestRounds,
			workers:       *ingestWorkers,
			batch:         *ingestBatch,
			queue:         *ingestQueue,
			shed:          *ingestShed,
			idleEvict:     *ingestIdleEvict,
			tripFaults:    *ingestTripFaults,
			openRounds:    *ingestOpenRounds,
			rate:          *ingestRate,
			burst:         *ingestBurst,
			driftFloor:    *ingestDriftFloor,
			poison:        *ingestPoison,
			poisonFrom:    *ingestPoisonFrom,
			tenantShards:  *tenantShards,
			globalShards:  *globalShards,
			sitesPerDelta: *sitesPerDelta,
			mix:           *ingestMix,
			stateDir:      *stateDir,
			jsonPath:      path,
			snapshotPath:  *snapshotOut,
		}))
		return
	}

	if cmd == "sweep" || cmd == "sweep-merge" || cmd == "sweep-diff" {
		// The sweep family builds its own (possibly scaled) suite or
		// reads prior state; skip the default system construction below.
		path := *out
		if path == "" {
			path = "BENCH_sweep.json"
		}
		switch cmd {
		case "sweep":
			check(runSweep(sweepOpts{
				engine:         engine,
				seed:           *seed,
				grid:           *sweepGrid,
				combos:         *sweepCombos,
				kneeFactor:     *sweepKnee,
				kernelScale:    *sweepKernelScale,
				timings:        *sweepTimings,
				measureWorkers: *measureWorkers,
				jsonPath:       path,
				statePath:      *stateDir,
				shards:         *sweepShards,
				shard:          *sweepShard,
				chaosRate:      *chaosRate,
				chaosSeed:      *chaosSeed,
				chaosMax:       *chaosMax,
			}))
		case "sweep-merge":
			check(runSweepMerge(fs.Args(), path))
		case "sweep-diff":
			check(runSweepDiff(fs.Args()))
		}
		return
	}

	sys, err := pibe.NewSyntheticKernel(pibe.KernelConfig{Seed: *seed})
	check(err)
	sys.SetMeasureWorkers(*measureWorkers)
	sys.SetEngine(engine)

	var inject *resilience.Injector
	if *chaosRate > 0 {
		inject = sys.InjectFaults(*chaosSeed, pibe.UniformFaultRates(*chaosRate), *chaosMax)
		defer func() {
			fmt.Fprintf(os.Stderr, "pibe: chaos: injected faults: %s\n", inject.Summary())
		}()
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		w = f
	}

	switch cmd {
	case "top":
		flavor := pibe.LMBench
		if *workloadName == "apache" {
			flavor = pibe.Apache
		}
		p, err := sys.Profile(flavor, 5)
		check(err)
		fmt.Fprint(w, p.TopReport(*topN))

	case "dump":
		if *funcName == "" {
			fmt.Fprintln(os.Stderr, "pibe dump: -func is required")
			os.Exit(2)
		}
		img, err := sys.Build(pibe.BuildConfig{})
		check(err)
		out := img.DumpFunction(*funcName)
		if out == "" {
			fmt.Fprintf(os.Stderr, "pibe dump: no function %q\n", *funcName)
			os.Exit(1)
		}
		fmt.Fprint(w, out)

	case "profile":
		flavor := pibe.LMBench
		if *workloadName == "apache" {
			flavor = pibe.Apache
		}
		p := collectProfile(sys, flavor)
		_, err = p.WriteTo(w)
		check(err)

	case "build", "measure":
		var profile *pibe.Profile
		if *profilePath != "" {
			f, err := os.Open(*profilePath)
			check(err)
			if *lenient {
				p, sal, rerr := pibe.ReadProfileLenient(f)
				if sal != nil && !sal.Clean() {
					fmt.Fprintf(os.Stderr, "pibe: %s\n", sal)
				}
				profile, err = p, rerr
			} else {
				profile, err = pibe.ReadProfile(f)
			}
			f.Close()
			check(err)
		} else if *icpBudget > 0 || *inlineBudget > 0 {
			// No profile supplied: collect one in-process.
			profile = collectProfile(sys, pibe.LMBench)
		}
		cfg := pibe.BuildConfig{
			Profile:      profile,
			Defenses:     parseDefenses(*defenses),
			JumpSwitches: *jumpswitches,
			Optimize: pibe.OptimizeConfig{
				ICPBudget:      *icpBudget,
				InlineBudget:   *inlineBudget,
				LaxBudget:      *lax,
				UseLLVMInliner: *llvmInliner,
			},
		}
		img, err := sys.Build(cfg)
		check(err)
		st := img.Stats()
		fmt.Fprintf(w, "image built: %d functions, %d bytes, %d indirect calls (%d defended, %d vulnerable)\n",
			st.Funcs, st.Bytes, st.IndirectCalls, img.Census.DefendedICalls, img.Census.VulnICalls)
		if icp := img.Opt.ICP; icp != nil {
			fmt.Fprintf(w, "icp: %d targets promoted at %d sites (%.2f%% of candidate weight)\n",
				icp.PromotedTargets, icp.PromotedSites, 100*float64(icp.PromotedWeight)/float64(icp.TotalWeight+1))
		}
		if inl := img.Opt.Inline; inl != nil {
			fmt.Fprintf(w, "inlining: %d of %d candidate sites elided (%.1f%% of return weight)\n",
				inl.Inlined, inl.Candidates, 100*inl.ElidedReturnFraction())
		}
		if *security {
			rep := img.SecurityReport()
			fmt.Fprintf(w, "security: icalls spectre-v2 %d/%d, lvi %d/%d; returns ret2spec %d/%d; ijumps %d/%d\n",
				rep.ICallsSpectreV2, rep.TotalICalls, rep.ICallsLVI, rep.TotalICalls,
				rep.ReturnsRet2spec, rep.TotalReturns, rep.IJumpsSpectreV2, rep.TotalIJumps)
		}
		if cmd == "measure" || *measure {
			lat, err := img.MeasureLMBench(pibe.LMBench)
			check(err)
			fmt.Fprintf(w, "%-14s %10s\n", "test", "latency µs")
			for _, l := range lat {
				fmt.Fprintf(w, "%-14s %10.2f\n", l.Bench, l.Micros)
			}
		}

	case "fleet":
		// Baseline: a profile from -profile, or an in-process LMBench run
		// (the paper's training workload) — deliberately mismatched with
		// the default apache,nginx fleet mix so drift is observable.
		var baseline *pibe.Profile
		if *profilePath != "" {
			f, err := os.Open(*profilePath)
			check(err)
			baseline, err = pibe.ReadProfile(f)
			f.Close()
			check(err)
		} else {
			baseline = collectProfile(sys, pibe.LMBench)
		}
		cfg := pibe.FleetConfig{
			Runners:          *fleetRunners,
			Shards:           *fleetShards,
			Epochs:           *fleetEpochs,
			Seed:             *seed,
			Decay:            *fleetDecay,
			Mix:              parseMix(*fleetMix),
			DriftThreshold:   *driftThreshold,
			CanaryEpochs:     *canary,
			RegressionBudget: *regressionBudget,
			StateDir:         *stateDir,
			Build: pibe.BuildConfig{
				Defenses: parseDefenses(*defenses),
				Optimize: pibe.OptimizeConfig{
					ICPBudget:    *icpBudget,
					InlineBudget: *inlineBudget,
					LaxBudget:    *lax,
				},
			},
			Measure:    *measure,
			MeasureApp: parseMix(*fleetMix)[0],
		}
		fl, err := sys.NewFleet(baseline, cfg)
		check(err)
		res, err := fl.Run()
		if err != nil && res != nil && res.Partial {
			fmt.Fprintf(os.Stderr, "pibe: fleet degraded to a partial aggregate: %v\n", err)
		} else {
			check(err)
		}
		if res.StartEpoch > 0 {
			fmt.Fprintf(w, "resumed from checkpoint at epoch %d\n", res.StartEpoch)
		}
		for _, e := range res.Epochs {
			fmt.Fprintf(w, "epoch %d: merged %d/%d (aborted %d, failed %d)  sites %d  ops %d  overlap %.3f",
				e.Epoch, e.Merged, e.Merged+e.Failed, e.Aborted, e.Failed, e.Sites, e.Ops, e.Overlap)
			if e.Rebuilt {
				fmt.Fprint(w, "  REBUILT")
			}
			if e.Canary {
				fmt.Fprint(w, "  CANARY")
			}
			if e.Promoted {
				fmt.Fprint(w, "  PROMOTED")
			}
			if e.Rejected != "" {
				fmt.Fprintf(w, "  rejected=%q", e.Rejected)
			}
			if e.CoolingDown > 0 {
				fmt.Fprintf(w, "  cooldown=%d", e.CoolingDown)
			}
			if e.RebuildErr != "" {
				fmt.Fprintf(w, "  rebuild-error=%q", e.RebuildErr)
			}
			if e.RequestCycles > 0 {
				fmt.Fprintf(w, "  req-cycles %.0f", e.RequestCycles)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "fleet: %d epochs, %d promoted, %d rejected, %d build-failures, partial=%v\n",
			len(res.Epochs), res.Rebuilds, res.Rejections, res.RebuildFailures, res.Partial)

	case "bench-engine":
		path := *out
		if path == "" {
			path = "BENCH_engine.json"
		}
		check(benchEngine(path, *seed, *measureWorkers, *benchIters, engine))

	default:
		usage()
	}
}

// parseMix parses a comma-separated flavor list ("apache,nginx").
func parseMix(s string) []pibe.Workload {
	var mix []pibe.Workload
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "lmbench":
			mix = append(mix, pibe.LMBench)
		case "apache":
			mix = append(mix, pibe.Apache)
		case "nginx":
			mix = append(mix, pibe.Nginx)
		case "dbench":
			mix = append(mix, pibe.DBench)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "pibe: unknown workload %q in mix\n", name)
			os.Exit(2)
		}
	}
	if len(mix) == 0 {
		mix = []pibe.Workload{pibe.LMBench}
	}
	return mix
}

// collectProfile runs an in-process profiling run, degrading to the
// partial profile (with a stderr warning) when the run aborts under
// injected or organic faults.
func collectProfile(sys *pibe.System, flavor pibe.Workload) *pibe.Profile {
	p, err := sys.Profile(flavor, 5)
	if err != nil && p != nil && pibe.IsPartialProfileErr(err) {
		fmt.Fprintf(os.Stderr, "pibe: profiling aborted, continuing with partial profile: %v\n", err)
		return p
	}
	check(err)
	return p
}

func parseDefenses(s string) pibe.Defenses {
	switch s {
	case "all":
		return pibe.AllDefenses
	case "retpolines":
		return pibe.Defenses{Retpolines: true}
	case "ret-retpolines":
		return pibe.Defenses{RetRetpolines: true}
	case "lvi":
		return pibe.Defenses{LVICFI: true}
	case "fineibt":
		return pibe.Defenses{FineIBT: true}
	case "pac-cfi":
		return pibe.Defenses{PACCFI: true}
	case "verifence":
		return pibe.Defenses{VeriFence: true}
	case "none":
		return pibe.Defenses{}
	default:
		fmt.Fprintf(os.Stderr, "pibe: unknown defense set %q\n", s)
		os.Exit(2)
	}
	return pibe.Defenses{}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pibe <profile|build|measure|fleet|top|dump|bench-engine|sweep|sweep-merge|sweep-diff|ingest> [flags]")
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pibe:", err)
		os.Exit(1)
	}
}
