package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	pibe "repro"
	"repro/internal/ingest"
	"repro/internal/prof"
)

// ingestOpts carries the `pibe ingest` flag values.
type ingestOpts struct {
	engine        pibe.Engine
	seed          int64
	tenants       int
	kernels       int
	rounds        int
	workers       int
	batch         int
	queue         int
	shed          bool
	idleEvict     int
	tripFaults    uint64
	openRounds    int
	rate          int
	burst         int
	driftFloor    float64
	poison        bool
	poisonFrom    int
	tenantShards  int
	globalShards  int
	sitesPerDelta int
	mix           string
	stateDir      string
	jsonPath      string
	snapshotPath  string
}

// runIngest drives the multi-tenant profile-ingestion service with a
// simulated population of tenants × kernels reporting kernels: base
// profiles are collected in-process from the -ingest-mix workload
// flavors, each tenant's kernels report deltas drawn from their base's
// rotating hot window, and the service batches, merges and checkpoints
// round by round. The final global aggregate is written to
// -snapshot-out (its serialization is byte-identical for every worker
// count and across -state crash/resume), and the machine-readable
// benchmark report to opts.jsonPath.
func runIngest(opts ingestOpts) error {
	sys, err := pibe.NewSyntheticKernel(pibe.KernelConfig{Seed: opts.seed})
	if err != nil {
		return err
	}
	sys.SetEngine(opts.engine)
	start := time.Now()
	var bases []ingest.Base
	for _, flavor := range parseMix(opts.mix) {
		p, err := sys.Profile(flavor, 3)
		if err != nil {
			if p != nil && pibe.IsPartialProfileErr(err) {
				fmt.Fprintf(os.Stderr, "pibe ingest: partial base profile for %v: %v\n", flavor, err)
			} else {
				return err
			}
		}
		bases = append(bases, ingest.Base{Name: flavor.String(), Prof: p.Raw()})
	}
	fmt.Fprintf(os.Stderr, "pibe ingest: %d base profiles collected in %v\n",
		len(bases), time.Since(start).Round(time.Millisecond))

	workers := opts.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	simCfg := ingest.SimConfig{
		Tenants: opts.tenants, Kernels: opts.kernels, Rounds: opts.rounds,
		Workers: workers, SitesPerDelta: opts.sitesPerDelta,
		Seed: opts.seed, Bases: bases,
	}
	if opts.poison {
		simCfg.Poison = &ingest.PoisonConfig{FromRound: opts.poisonFrom}
	}
	// The sanitation universe is the union of the base profiles — every
	// site a simulated kernel can legitimately report. The poison
	// tenant's sites live outside it, so its deltas are doubly malformed.
	universe := prof.New()
	for _, b := range bases {
		universe.Merge(b.Prof)
	}
	svcCfg := ingest.Config{
		TenantShards: opts.tenantShards,
		GlobalShards: opts.globalShards,
		BatchSize:    opts.batch,
		QueueDepth:   opts.queue,
		Workers:      workers,
		Shed:         opts.shed,
		IdleEvict:    opts.idleEvict,
		TripFaults:   opts.tripFaults,
		OpenRounds:   opts.openRounds,
		Seed:         opts.seed,
		TenantRate:   opts.rate,
		TenantBurst:  opts.burst,
		DriftFloor:   opts.driftFloor,
		Universe:     universe,
		StateDir:     opts.stateDir,
		Warnf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	simCfg.RoundHook = func(round int, svc *ingest.Service) error {
		st := svc.Stats()
		fmt.Printf("round %d: deltas %d  batches %d  tenants %d  global-sites %d  evict %d  resurrect %d  shed %d  merge-p99 %v\n",
			round, st.Deltas, st.Batches, st.LiveTenants, st.GlobalSites,
			st.Evictions, st.Resurrections, st.ShedDeltas, st.MergeP99)
		if st.Poison+st.QuarantineDropped+st.Throttled+st.Trips > 0 {
			fmt.Printf("round %d: health %s  poison %d  quarantine-dropped %d  throttled %d  trips %d  heals %d\n",
				round, healthSummary(st.Health), st.Poison, st.QuarantineDropped,
				st.Throttled, st.Trips, st.Heals)
		}
		return nil
	}

	sim, err := ingest.NewSim(simCfg)
	if err != nil {
		return err
	}
	svcCfg.Fingerprint = sim.Fingerprint(svcCfg)
	svc, err := ingest.Open(svcCfg)
	if err != nil {
		return err
	}
	startRound := svc.Round()
	if startRound > 0 {
		fmt.Printf("resumed from checkpoint at round %d\n", startRound)
	}

	runStart := time.Now()
	if err := sim.Run(svc); err != nil {
		svc.Close()
		return err
	}
	wall := time.Since(runStart)
	if err := svc.Close(); err != nil {
		return err
	}

	rep := ingest.BuildReport(simCfg, svc, startRound, wall)
	data, err := rep.WriteJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(opts.jsonPath, data, 0o644); err != nil {
		return err
	}

	if opts.snapshotPath != "" {
		f, err := os.Create(opts.snapshotPath)
		if err != nil {
			return err
		}
		if _, err := svc.GlobalSnapshot().WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	fmt.Printf("ingest: %d tenants × %d kernels = %d simulated kernels, %d rounds (from %d)\n",
		rep.Tenants, rep.KernelsPerTenant, rep.SimulatedKernels, rep.Rounds, rep.StartRound)
	fmt.Printf("ingest: %d deltas this process in %.1fs = %.0f deltas/sec  (total %d, shed %d)\n",
		rep.DeltasThisProcess, rep.WallSeconds, rep.DeltasPerSec, rep.DeltasTotal, rep.ShedDeltas)
	fmt.Printf("ingest: merge latency p50 %.1fµs p99 %.1fµs max %.1fµs, queue high-water %d\n",
		rep.MergeP50Micros, rep.MergeP99Micros, rep.MergeMaxMicros, rep.QueueHighWater)
	fmt.Printf("ingest: health %s  poison %d  quarantine-dropped %d  throttled %d  trips %d  heals %d\n",
		healthSummary(rep.HealthCounts), rep.Poison, rep.QuarantineDropped,
		rep.Throttled, rep.Trips, rep.Heals)
	fmt.Printf("ingest: global %d sites, snapshot %s; report %s\n",
		rep.GlobalSites, rep.SnapshotHash, opts.jsonPath)
	return nil
}

// healthSummary renders a health census compactly and in a stable
// order, e.g. "63 healthy, 1 quarantined".
func healthSummary(census map[string]int) string {
	var parts []string
	for _, state := range []string{"healthy", "degraded", "quarantined", "probation"} {
		if n := census[state]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, state))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}
