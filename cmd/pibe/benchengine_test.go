package main

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/resilience"
)

// TestBenchLoopWrapKeepsTypedFault: a benchmark body that fails with a
// typed resilience fault must surface it through benchLoop's named wrap
// (%w), so the CLI can report the phase and kind instead of flat text.
func TestBenchLoopWrapKeepsTypedFault(t *testing.T) {
	boom := resilience.Faultf(resilience.PhaseExecute, resilience.KindTrap, "syscall_read", "injected")
	_, err := benchLoop("warm-lmbench", 1, func() error { return boom })
	if err == nil {
		t.Fatal("failing body produced no error")
	}
	if !strings.HasPrefix(err.Error(), "bench-engine: warm-lmbench:") {
		t.Errorf("wrap lost the benchmark name: %q", err)
	}
	fe, ok := resilience.AsFault(err)
	if !ok {
		t.Fatalf("error chain %v lost the typed fault", err)
	}
	if fe.Kind != resilience.KindTrap || fe.Site != "syscall_read" {
		t.Errorf("fault = kind %v site %q, want the original trap at syscall_read", fe.Kind, fe.Site)
	}
	if !errors.Is(err, boom) {
		t.Error("errors.Is cannot find the original fault in the chain")
	}

	// A clean body runs to completion and reports at least minIters.
	res, err := benchLoop("noop", 3, func() error { return nil })
	if err != nil {
		t.Fatalf("clean body: %v", err)
	}
	if res.Iters < 3 {
		t.Errorf("iters = %d, want >= 3", res.Iters)
	}
}
