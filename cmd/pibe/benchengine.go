package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/interp"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// engineBench is one timed benchmark in the BENCH_engine.json report.
type engineBench struct {
	Name      string  `json:"name"`
	Iters     int     `json:"iters"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// engineReport is the machine-readable perf trajectory record emitted by
// `pibe bench-engine`.
type engineReport struct {
	Seed       int64         `json:"seed"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Workers    int           `json:"measure_workers"`
	Benches    []engineBench `json:"benches"`
	// SpeedupMeasureRequest is serial ns/op divided by parallel ns/op
	// for MeasureRequest — the headline engine metric.
	SpeedupMeasureRequest float64 `json:"speedup_measure_request"`
}

// benchLoop times fn, running at least minIters iterations and at least
// a fixed minimum duration so cheap operations are not measured from a
// single noisy sample.
func benchLoop(name string, minIters int, fn func() error) (engineBench, error) {
	const minDur = 500 * time.Millisecond
	if minIters < 1 {
		minIters = 1
	}
	iters := 0
	start := time.Now()
	for iters < minIters || time.Since(start) < minDur {
		if err := fn(); err != nil {
			return engineBench{}, fmt.Errorf("bench-engine: %s: %v", name, err)
		}
		iters++
	}
	elapsed := time.Since(start)
	ns := float64(elapsed.Nanoseconds()) / float64(iters)
	return engineBench{
		Name:      name,
		Iters:     iters,
		NsPerOp:   ns,
		OpsPerSec: 1e9 / ns,
	}, nil
}

// benchEngine times the execution engine end to end and writes the JSON
// report to path. It builds its runners directly on the unoptimized
// kernel program, matching the package benchmarks in internal/workload
// and internal/interp so the CLI numbers and `go test -bench` numbers
// describe the same code paths.
func benchEngine(path string, seed int64, workers, minIters int) error {
	k, err := kernel.Generate(kernel.Config{Seed: seed})
	if err != nil {
		return err
	}
	prog, err := interp.Compile(k.Mod)
	if err != nil {
		return err
	}
	newRunner := func(flavor workload.Flavor, w int) (*workload.Runner, error) {
		r, err := workload.NewRunner(k, prog, flavor, seed+9)
		if err != nil {
			return nil, err
		}
		r.Workers = w
		return r, nil
	}

	rep := engineReport{Seed: seed, GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: workers}

	// Raw dispatch: one warmed machine executing one kernel entry.
	mr, err := newRunner(workload.LMBench, 0)
	if err != nil {
		return err
	}
	mc := interp.NewMachine(prog, seed+13)
	mc.CPU = mr.CPU
	mc.Res = mr.Res
	entry := k.Specs[0].Name
	b, err := benchLoop("machine_run", minIters*100, func() error {
		return mc.Run(k.Entries[entry])
	})
	if err != nil {
		return err
	}
	rep.Benches = append(rep.Benches, b)

	// Profile collection over the Apache mix.
	pr, err := newRunner(workload.Apache, 0)
	if err != nil {
		return err
	}
	b, err = benchLoop("profile_collection", minIters, func() error {
		_, err := pr.Profile(2)
		return err
	})
	if err != nil {
		return err
	}
	rep.Benches = append(rep.Benches, b)

	// Request measurement, serial driver vs sharded driver.
	rs, err := newRunner(workload.Nginx, 0)
	if err != nil {
		return err
	}
	serial, err := benchLoop("measure_request_serial", minIters, func() error {
		_, err := rs.MeasureRequest(5)
		return err
	})
	if err != nil {
		return err
	}
	rep.Benches = append(rep.Benches, serial)
	if workers < 1 {
		workers = 1
	}
	rp, err := newRunner(workload.Nginx, workers)
	if err != nil {
		return err
	}
	parallel, err := benchLoop("measure_request_parallel", minIters, func() error {
		_, err := rp.MeasureRequest(5)
		return err
	})
	if err != nil {
		return err
	}
	rep.Benches = append(rep.Benches, parallel)
	rep.SpeedupMeasureRequest = serial.NsPerOp / parallel.NsPerOp

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, b := range rep.Benches {
		fmt.Printf("%-26s %12.0f ns/op %14.1f ops/sec  (%d iters)\n", b.Name, b.NsPerOp, b.OpsPerSec, b.Iters)
	}
	fmt.Printf("measure-request speedup (serial/parallel, %d workers): %.2fx\n", workers, rep.SpeedupMeasureRequest)
	fmt.Printf("wrote %s\n", path)
	return nil
}
