package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/interp"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// engineBench is one timed benchmark in the BENCH_engine.json report.
type engineBench struct {
	Name      string  `json:"name"`
	Iters     int     `json:"iters"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// engineReport is the machine-readable perf trajectory record emitted by
// `pibe bench-engine`.
type engineReport struct {
	Seed       int64  `json:"seed"`
	Engine     string `json:"engine"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"measure_workers"`
	Benches    []engineBench `json:"benches"`
	// SpeedupMachineRun is interpreter machine_run ns/op divided by
	// compiled ns/op — the threaded-code tier's dispatch speedup,
	// measured in the same process on the same kernel.
	SpeedupMachineRun float64 `json:"speedup_machine_run"`
	// SpeedupMeasureRequest is serial ns/op divided by parallel ns/op
	// for MeasureRequest. Omitted (with SpeedupNote) when GOMAXPROCS=1:
	// a box with no parallelism available would report the sharded
	// driver's coordination overhead as a bogus headline "slowdown".
	SpeedupMeasureRequest float64 `json:"speedup_measure_request,omitempty"`
	SpeedupNote           string  `json:"speedup_note,omitempty"`
}

// benchLoop times fn, running at least minIters iterations and at least
// a fixed minimum duration so cheap operations are not measured from a
// single noisy sample. Clock reads are batched — the batch doubles up
// to a cap between checks — so the timer itself stays out of the
// per-operation cost for nanosecond-scale fns.
func benchLoop(name string, minIters int, fn func() error) (engineBench, error) {
	const minDur = 500 * time.Millisecond
	if minIters < 1 {
		minIters = 1
	}
	iters := 0
	batch := 1
	start := time.Now()
	for {
		for i := 0; i < batch; i++ {
			if err := fn(); err != nil {
				return engineBench{}, fmt.Errorf("bench-engine: %s: %w", name, err)
			}
		}
		iters += batch
		if iters >= minIters && time.Since(start) >= minDur {
			break
		}
		if batch < 4096 {
			batch *= 2
		}
	}
	elapsed := time.Since(start)
	ns := float64(elapsed.Nanoseconds()) / float64(iters)
	return engineBench{
		Name:      name,
		Iters:     iters,
		NsPerOp:   ns,
		OpsPerSec: 1e9 / ns,
	}, nil
}

// benchEngine times the execution engine end to end and writes the JSON
// report to path. It builds its runners directly on the unoptimized
// kernel program, matching the package benchmarks in internal/workload
// and internal/interp so the CLI numbers and `go test -bench` numbers
// describe the same code paths. The machine_run dispatch benchmark is
// always timed on both tiers (machine_run_interp / machine_run_compiled
// rows); the headline machine_run row and the workload benchmarks run
// on the selected engine.
func benchEngine(path string, seed int64, workers, minIters int, eng interp.Engine) error {
	k, err := kernel.Generate(kernel.Config{Seed: seed})
	if err != nil {
		return err
	}
	prog, err := interp.Compile(k.Mod)
	if err != nil {
		return err
	}
	newRunner := func(flavor workload.Flavor, w int) (*workload.Runner, error) {
		r, err := workload.NewRunner(k, prog, flavor, seed+9)
		if err != nil {
			return nil, err
		}
		r.Workers = w
		r.Engine = eng
		return r, nil
	}

	gmp := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = gmp
	}
	rep := engineReport{Seed: seed, Engine: eng.String(), GOMAXPROCS: gmp, Workers: workers}

	// Raw dispatch, one warmed machine executing one kernel entry, both
	// tiers. Each tier gets its own machine and CPU model so neither
	// inherits the other's predictor state.
	entry := k.Specs[0].Name
	entryIdx := prog.FuncIndex(k.Entries[entry])
	runTier := func(name string, e interp.Engine) (engineBench, error) {
		mr, err := newRunner(workload.LMBench, 0)
		if err != nil {
			return engineBench{}, err
		}
		mc := interp.NewMachine(prog, seed+13)
		mc.CPU = mr.CPU
		mc.Res = mr.Res
		mc.Engine = e
		return benchLoop(name, minIters*100, func() error {
			return mc.RunIndex(entryIdx)
		})
	}
	bInterp, err := runTier("machine_run_interp", interp.EngineInterp)
	if err != nil {
		return err
	}
	bCompiled, err := runTier("machine_run_compiled", interp.EngineCompiled)
	if err != nil {
		return err
	}
	head := bInterp
	if eng == interp.EngineCompiled {
		head = bCompiled
	}
	head.Name = "machine_run"
	rep.Benches = append(rep.Benches, head, bInterp, bCompiled)
	rep.SpeedupMachineRun = bInterp.NsPerOp / bCompiled.NsPerOp

	// Profile collection over the Apache mix.
	pr, err := newRunner(workload.Apache, 0)
	if err != nil {
		return err
	}
	b, err := benchLoop("profile_collection", minIters, func() error {
		_, err := pr.Profile(2)
		return err
	})
	if err != nil {
		return err
	}
	rep.Benches = append(rep.Benches, b)

	// Request measurement, serial driver vs sharded driver. With only
	// one scheduler thread there is no parallelism to measure, so the
	// parallel bench and the speedup ratio are skipped with a note
	// instead of reporting coordination overhead as a slowdown.
	rs, err := newRunner(workload.Nginx, 0)
	if err != nil {
		return err
	}
	serial, err := benchLoop("measure_request_serial", minIters, func() error {
		_, err := rs.MeasureRequest(5)
		return err
	})
	if err != nil {
		return err
	}
	rep.Benches = append(rep.Benches, serial)
	if gmp == 1 {
		rep.SpeedupNote = "GOMAXPROCS=1: parallel measure bench skipped (no parallelism available)"
	} else {
		rp, err := newRunner(workload.Nginx, workers)
		if err != nil {
			return err
		}
		parallel, err := benchLoop("measure_request_parallel", minIters, func() error {
			_, err := rp.MeasureRequest(5)
			return err
		})
		if err != nil {
			return err
		}
		rep.Benches = append(rep.Benches, parallel)
		rep.SpeedupMeasureRequest = serial.NsPerOp / parallel.NsPerOp
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, b := range rep.Benches {
		fmt.Printf("%-26s %12.0f ns/op %14.1f ops/sec  (%d iters)\n", b.Name, b.NsPerOp, b.OpsPerSec, b.Iters)
	}
	fmt.Printf("machine-run speedup (interp/compiled): %.2fx\n", rep.SpeedupMachineRun)
	if rep.SpeedupNote != "" {
		fmt.Printf("measure-request speedup: skipped — %s\n", rep.SpeedupNote)
	} else {
		fmt.Printf("measure-request speedup (serial/parallel, %d workers): %.2fx\n", workers, rep.SpeedupMeasureRequest)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
