package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/sweep"
)

// sweepOpts carries the `pibe sweep` flag values.
type sweepOpts struct {
	seed           int64
	grid           string
	combos         string
	kneeFactor     float64
	kernelScale    int
	timings        bool
	measureWorkers int
	jsonPath       string
}

// runSweep evaluates the budget grid and writes the text matrices to
// stdout and the machine-readable report to opts.jsonPath.
func runSweep(opts sweepOpts) error {
	grid, err := sweep.ParseGrid(opts.grid)
	if err != nil {
		return err
	}
	combos, err := sweep.CombosByName(opts.combos)
	if err != nil {
		return err
	}
	kcfg := sweep.ScaledKernelConfig(opts.seed, opts.kernelScale)
	start := time.Now()
	suite, err := bench.NewSuiteKernel(kcfg)
	if err != nil {
		return err
	}
	// Cell measurement goes through the sharded deterministic driver;
	// -measure-workers 0 would fall back to the (numerically different)
	// legacy serial driver, so the sweep pins at least one worker to
	// keep BENCH_sweep.json byte-identical for every worker count.
	mw := opts.measureWorkers
	if mw < 1 {
		mw = 1
	}
	suite.Sys.SetMeasureWorkers(mw)
	fmt.Fprintf(os.Stderr, "pibe sweep: kernel generated and profiled in %v (%d cells)\n",
		time.Since(start).Round(time.Millisecond), len(grid)*len(grid)*len(combos))

	rep, err := sweep.Run(suite, sweep.Config{
		ICPGrid:    grid,
		InlineGrid: grid,
		Combos:     combos,
		KneeFactor: opts.kneeFactor,
		Timings:    opts.timings,
	})
	if err != nil {
		return err
	}
	rep.ColdFuncs = kcfg.ColdFuncs
	rep.HelperLayers = kcfg.HelperLayers

	for _, t := range rep.Tables() {
		fmt.Println(t.Render())
	}
	data, err := rep.WriteJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(opts.jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cells, %d knees) in %v\n",
		opts.jsonPath, len(rep.Cells), len(rep.Knees), time.Since(start).Round(time.Millisecond))
	return nil
}
