package main

import (
	"fmt"
	"os"
	"time"

	pibe "repro"
	"repro/internal/bench"
	"repro/internal/sweep"
)

// sweepOpts carries the `pibe sweep` flag values.
type sweepOpts struct {
	engine         pibe.Engine
	seed           int64
	grid           string
	combos         string
	kneeFactor     float64
	kernelScale    int
	timings        bool
	measureWorkers int
	jsonPath       string
	statePath      string
	shards, shard  int
	chaosRate      float64
	chaosSeed      int64
	chaosMax       int
}

// runSweep evaluates the budget grid and writes the text matrices to
// stdout and the machine-readable report to opts.jsonPath. With -state
// it checkpoints each completed cell and resumes an interrupted sweep;
// with -sweep-shards/-sweep-shard it evaluates only this process's
// share of the grid (combine the shard state files with `pibe
// sweep-merge`).
func runSweep(opts sweepOpts) error {
	grid, err := sweep.ParseGrid(opts.grid)
	if err != nil {
		return err
	}
	combos, err := sweep.CombosByName(opts.combos)
	if err != nil {
		return err
	}
	kcfg := sweep.ScaledKernelConfig(opts.seed, opts.kernelScale)
	start := time.Now()
	suite, err := bench.NewSuiteKernel(kcfg)
	if err != nil {
		return err
	}
	// Cell measurement goes through the sharded deterministic driver;
	// -measure-workers 0 would fall back to the (numerically different)
	// legacy serial driver, so the sweep pins at least one worker to
	// keep BENCH_sweep.json byte-identical for every worker count.
	mw := opts.measureWorkers
	if mw < 1 {
		mw = 1
	}
	suite.Sys.SetMeasureWorkers(mw)
	// Engine choice never changes a cell's numbers (the compiled tier
	// is cycle-exact), so the sweep surface stays byte-identical.
	suite.Sys.SetEngine(opts.engine)
	fmt.Fprintf(os.Stderr, "pibe sweep: kernel generated and profiled in %v (%d cells)\n",
		time.Since(start).Round(time.Millisecond), len(grid)*len(grid)*len(combos))

	// Chaos arms after the suite exists (profile collection stays clean)
	// and after the baseline is pre-measured, so injected faults land on
	// grid cells — which degrade per-cell — rather than sinking the
	// whole sweep in setup.
	if opts.chaosRate > 0 {
		if _, err := suite.Baseline(); err != nil {
			return err
		}
		inject := suite.Sys.InjectFaults(opts.chaosSeed, pibe.UniformFaultRates(opts.chaosRate), opts.chaosMax)
		defer func() {
			fmt.Fprintf(os.Stderr, "pibe sweep: chaos: injected faults: %s\n", inject.Summary())
		}()
	}

	rep, err := sweep.Run(suite, sweep.Config{
		ICPGrid:      grid,
		InlineGrid:   grid,
		Combos:       combos,
		KneeFactor:   opts.kneeFactor,
		Timings:      opts.timings,
		ColdFuncs:    kcfg.ColdFuncs,
		HelperLayers: kcfg.HelperLayers,
		StatePath:    opts.statePath,
		Shards:       opts.shards,
		Shard:        opts.shard,
	})
	if err != nil {
		return err
	}

	for _, t := range rep.Tables() {
		fmt.Println(t.Render())
	}
	data, err := rep.WriteJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(opts.jsonPath, data, 0o644); err != nil {
		return err
	}
	status := ""
	if rep.FailedCells > 0 {
		status = fmt.Sprintf(", %d FAILED", rep.FailedCells)
	}
	if opts.shards > 1 {
		status += fmt.Sprintf(" [shard %d/%d — merge the shard state files with 'pibe sweep-merge']",
			opts.shard, opts.shards)
	}
	fmt.Printf("wrote %s (%d cells%s, %d knees) in %v\n",
		opts.jsonPath, len(rep.Cells), status, len(rep.Knees), time.Since(start).Round(time.Millisecond))
	return nil
}

// runSweepMerge combines the state files of a sharded or interrupted
// sweep into the canonical report (`pibe sweep-merge A.state B.state`).
func runSweepMerge(paths []string, jsonPath string) error {
	if len(paths) == 0 {
		return fmt.Errorf("sweep-merge: usage: pibe sweep-merge [-o BENCH_sweep.json] state-file...")
	}
	rep, info, err := sweep.Merge(paths)
	if err != nil {
		return err
	}
	for _, w := range info.Warnings {
		fmt.Fprintf(os.Stderr, "pibe sweep-merge: warning: %s\n", w)
	}
	if len(info.Missing) > 0 {
		fmt.Fprintf(os.Stderr, "pibe sweep-merge: warning: %d cells missing (no shard completed them): %v\n",
			len(info.Missing), info.Missing)
	}
	for _, t := range rep.Tables() {
		fmt.Println(t.Render())
	}
	data, err := rep.WriteJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("merged %d state files -> %s (%d cells, %d failed, %d missing, %d knees)\n",
		info.Files, jsonPath, len(rep.Cells), info.Failed, len(info.Missing), len(rep.Knees))
	return nil
}

// runSweepDiff compares two BENCH_sweep.json surfaces
// (`pibe sweep-diff A.json B.json`), printing per-cell overhead deltas
// and knee migration per combo.
func runSweepDiff(paths []string) error {
	if len(paths) != 2 {
		return fmt.Errorf("sweep-diff: usage: pibe sweep-diff A.json B.json")
	}
	a, err := sweep.ReadReport(paths[0])
	if err != nil {
		return err
	}
	b, err := sweep.ReadReport(paths[1])
	if err != nil {
		return err
	}
	d := sweep.Diff(a, b)
	fmt.Printf("sweep diff: A=%s  B=%s  max |delta| %.2fpp\n\n", paths[0], paths[1], 100*d.MaxAbsDelta)
	for _, t := range d.Tables(a, b) {
		fmt.Println(t.Render())
	}
	moved := 0
	for _, k := range d.Knees {
		if k.Moved {
			moved++
		}
	}
	if moved > 0 {
		fmt.Printf("%d of %d knees moved\n", moved, len(d.Knees))
	} else {
		fmt.Printf("all %d knees unchanged\n", len(d.Knees))
	}
	return nil
}
