// Command pibe-bench regenerates the tables of the paper's evaluation
// against the synthetic kernel.
//
// Usage:
//
//	pibe-bench [-seed N] [-table 1|2|...|12|robustness|all]
//
// Output is a sequence of aligned text tables; each carries the paper's
// reference values in its notes so results can be compared at a glance.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	seed := flag.Int64("seed", 1, "kernel generation seed")
	table := flag.String("table", "all", "table to regenerate (1-12, robustness, ablations, all)")
	flag.Parse()

	start := time.Now()
	suite, err := bench.NewSuite(*seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "kernel generated and profiled in %v\n", time.Since(start).Round(time.Millisecond))

	if *table == "all" {
		tables, err := suite.AllTables()
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	} else {
		t, err := suite.TableByID(*table)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pibe-bench:", err)
	os.Exit(1)
}
