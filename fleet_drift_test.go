package pibe_test

import (
	"bytes"
	"strings"
	"testing"

	pibe "repro"
	"repro/internal/ir"
)

// fleetBuild is the all-defenses optimized configuration the fleet's
// rebuild controller uses in these tests.
func fleetBuild() pibe.BuildConfig {
	return pibe.BuildConfig{
		Defenses: pibe.AllDefenses,
		Optimize: pibe.OptimizeConfig{ICPBudget: 0.99999, InlineBudget: 0.999, LaxBudget: 0.99},
	}
}

// TestFleetDriftRebuildEndToEnd demonstrates the whole loop: an image
// built against an LMBench-only profile goes stale when the fleet's
// workload mix shifts to Apache/Nginx; the drift detector sees hot-set
// overlap below the threshold, the controller rebuilds from the live
// aggregate, and the rebuilt image serves the shifted mix strictly
// faster than the stale one (the §8.4 mismatched-profile penalty,
// recovered automatically).
func TestFleetDriftRebuildEndToEnd(t *testing.T) {
	sys := testSystem(t)
	profLM := testProfile(t, sys)

	fl, err := sys.NewFleet(profLM, pibe.FleetConfig{
		Runners:        4,
		Shards:         4,
		Epochs:         2,
		OpsScale:       2,
		Seed:           42,
		Mix:            []pibe.Workload{pibe.Apache, pibe.Nginx},
		DriftThreshold: 0.75,
		Build:          fleetBuild(),
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	stale := fl.Image()
	staleCycles, err := stale.MeasureRequestCycles(pibe.Apache)
	if err != nil {
		t.Fatalf("measure stale image: %v", err)
	}

	res, err := fl.Run()
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if res.Partial {
		t.Error("fault-free fleet run reported partial aggregate")
	}
	if res.Rebuilds == 0 {
		t.Fatalf("workload shift did not trigger a rebuild; epochs: %+v", res.Epochs)
	}
	first := res.Epochs[0]
	if !(first.Overlap < 0.75) {
		t.Errorf("epoch 0 hot-set overlap = %.3f, want below the 0.75 threshold", first.Overlap)
	}
	if !first.Rebuilt {
		t.Errorf("drifted epoch 0 did not rebuild: %+v", first)
	}
	if !first.Promoted || first.Rejected != "" {
		t.Errorf("clean candidate did not pass the promotion gates: %+v", first)
	}

	fresh := fl.Image()
	if fresh == stale {
		t.Fatal("rebuild did not replace the active image")
	}
	freshCycles, err := fresh.MeasureRequestCycles(pibe.Apache)
	if err != nil {
		t.Fatalf("measure rebuilt image: %v", err)
	}
	if !(freshCycles < staleCycles) {
		t.Errorf("rebuilt image not faster on the shifted mix: stale %.0f cycles, rebuilt %.0f cycles",
			staleCycles, freshCycles)
	}
	t.Logf("apache request kernel cycles: stale %.0f → rebuilt %.0f (%.1f%% better), overlap %.3f",
		staleCycles, freshCycles, 100*(staleCycles-freshCycles)/staleCycles, first.Overlap)
}

// TestFleetDeterministicAggregate is the public-API side of the
// determinism contract: two fleet runs with the same seed and shard
// count serialize byte-identical final aggregates.
func TestFleetDeterministicAggregate(t *testing.T) {
	sys := testSystem(t)
	profLM := testProfile(t, sys)
	run := func() []byte {
		fl, err := sys.NewFleet(profLM, pibe.FleetConfig{
			Runners: 3,
			Shards:  4,
			Epochs:  2,
			Seed:    7,
			Mix:     []pibe.Workload{pibe.Apache, pibe.Nginx, pibe.DBench},
			// No DriftThreshold: collection only, no rebuilds.
			Build: pibe.BuildConfig{},
		})
		if err != nil {
			t.Fatalf("NewFleet: %v", err)
		}
		res, err := fl.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if _, err := res.Final.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed + shard count produced different serialized aggregates (%d vs %d bytes)", len(a), len(b))
	}
}

// TestFleetTrajectory exercises the overhead-trajectory measurement: the
// per-epoch request-cycle samples must be positive, and the post-rebuild
// sample must improve on the pre-rebuild one.
func TestFleetTrajectory(t *testing.T) {
	sys := testSystem(t)
	profLM := testProfile(t, sys)
	fl, err := sys.NewFleet(profLM, pibe.FleetConfig{
		Runners:        4,
		Shards:         4,
		Epochs:         3,
		Seed:           11,
		Mix:            []pibe.Workload{pibe.Apache, pibe.Nginx},
		DriftThreshold: 0.75,
		Build:          fleetBuild(),
		Measure:        true,
		MeasureApp:     pibe.Apache,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	// The pre-run sample on the stale image anchors the trajectory.
	staleCycles, err := fl.Image().MeasureRequestCycles(pibe.Apache)
	if err != nil {
		t.Fatalf("measure stale: %v", err)
	}
	res, err := fl.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rebuiltAt := -1
	for _, e := range res.Epochs {
		if e.RequestCycles <= 0 {
			t.Fatalf("epoch %d trajectory sample = %v", e.Epoch, e.RequestCycles)
		}
		if e.Rebuilt && rebuiltAt < 0 {
			rebuiltAt = e.Epoch
		}
	}
	if rebuiltAt < 0 {
		t.Fatalf("no rebuild in trajectory run: %+v", res.Epochs)
	}
	after := res.Epochs[rebuiltAt].RequestCycles
	if !(after < staleCycles) {
		t.Errorf("trajectory did not improve after rebuild: stale %.0f, post-rebuild %.0f", staleCycles, after)
	}
}

// stripOneDefense models a miscompiled hardening pass: one rewriteable
// indirect call loses its retpoline thunk.
func stripOneDefense(mod *ir.Module) {
	done := false
	for _, f := range mod.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if !done && in.Op == ir.OpICall && !in.Asm && in.Defense != ir.DefNone {
				in.Defense = ir.DefNone
				done = true
			}
		})
		if done {
			return
		}
	}
}

// swapBranches models a control-flow miscompile: every conditional
// branch is inverted, which passes the structural checks (the module
// still verifies and every surviving indirect branch stays hardened)
// but diverges observably from the reference.
func swapBranches(mod *ir.Module) {
	for _, f := range mod.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op == ir.OpBr && in.Else != "" {
				in.Then, in.Else = in.Else, in.Then
			}
		})
	}
}

// TestFleetTamperedCandidateRejected is the promotion-safety E2E: a
// candidate whose build was corrupted — either dropping a hardening
// site or miscompiling control flow — is rejected by differential
// validation, the incumbent image keeps serving, and the rejection
// reason lands in the epoch report and the run counters.
func TestFleetTamperedCandidateRejected(t *testing.T) {
	cases := []struct {
		name   string
		tamper func(*ir.Module)
		want   string
	}{
		{"unhardened-site", stripOneDefense, "unhardened-site"},
		{"behavioral-divergence", swapBranches, "divergence"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := testSystem(t)
			profLM := testProfile(t, sys)
			fl, err := sys.NewFleet(profLM, pibe.FleetConfig{
				Runners:        4,
				Shards:         4,
				Epochs:         2,
				Seed:           42,
				Mix:            []pibe.Workload{pibe.Apache, pibe.Nginx},
				DriftThreshold: 0.75,
				Build:          fleetBuild(),
				TamperRebuild:  tc.tamper,
			})
			if err != nil {
				t.Fatalf("NewFleet: %v", err)
			}
			incumbent := fl.Image()
			res, err := fl.Run()
			if err != nil {
				t.Fatalf("fleet run: %v", err)
			}
			if res.Rebuilds != 0 {
				t.Errorf("tampered candidate was promoted (%d rebuilds)", res.Rebuilds)
			}
			if res.Rejections == 0 {
				t.Fatalf("tampered candidate was not rejected: %+v", res.Epochs)
			}
			first := res.Epochs[0]
			if !first.Rebuilt || first.Promoted {
				t.Errorf("epoch 0 = %+v, want rebuilt-but-not-promoted", first)
			}
			if !strings.Contains(first.Rejected, tc.want) {
				t.Errorf("rejection reason %q does not name %q", first.Rejected, tc.want)
			}
			if fl.Image() != incumbent {
				t.Error("incumbent image was replaced despite the rejection")
			}
		})
	}
}

// TestFleetStateResumeContinues is the crash-safe resume E2E at the
// public API: a fleet stopped after two epochs resumes from its
// checkpoint directory, replays only the remaining epoch, and converges
// on exactly the same final aggregate, promotion count and image as an
// uninterrupted run.
func TestFleetStateResumeContinues(t *testing.T) {
	sys := testSystem(t)
	profLM := testProfile(t, sys)
	mkCfg := func(dir string, epochs int) pibe.FleetConfig {
		return pibe.FleetConfig{
			Runners:        4,
			Shards:         4,
			Epochs:         epochs,
			Seed:           42,
			Mix:            []pibe.Workload{pibe.Apache, pibe.Nginx},
			DriftThreshold: 0.75,
			Build:          fleetBuild(),
			StateDir:       dir,
		}
	}
	run := func(dir string, epochs int) (*pibe.Fleet, *pibe.FleetResult) {
		fl, err := sys.NewFleet(profLM, mkCfg(dir, epochs))
		if err != nil {
			t.Fatalf("NewFleet: %v", err)
		}
		res, err := fl.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return fl, res
	}

	dirA := t.TempDir()
	flA, resA := run(dirA, 3)
	if resA.Rebuilds == 0 {
		t.Fatal("reference run never promoted; drift config inert")
	}

	dirB := t.TempDir()
	_, resB1 := run(dirB, 2)
	flB, resB2 := run(dirB, 3)
	if resB2.StartEpoch != 2 || len(resB2.Epochs) != 1 {
		t.Fatalf("resume replayed epochs %+v starting at %d, want exactly epoch 2",
			resB2.Epochs, resB2.StartEpoch)
	}
	if resB2.Rebuilds != resA.Rebuilds {
		t.Errorf("resumed promotion count %d (carried %d) != uninterrupted %d",
			resB2.Rebuilds, resB1.Rebuilds, resA.Rebuilds)
	}
	var a, b bytes.Buffer
	resA.Final.WriteTo(&a)
	resB2.Final.WriteTo(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("resumed final aggregate differs from the uninterrupted run")
	}
	ca, err := flA.Image().MeasureRequestCycles(pibe.Apache)
	if err != nil {
		t.Fatalf("measure reference image: %v", err)
	}
	cb, err := flB.Image().MeasureRequestCycles(pibe.Apache)
	if err != nil {
		t.Fatalf("measure resumed image: %v", err)
	}
	if ca != cb {
		t.Errorf("resumed fleet serves a different image: %.0f vs %.0f request cycles", cb, ca)
	}
}
